package repro

// One benchmark per table/figure of the paper. Each bench regenerates a
// scaled-down version of the corresponding experiment and reports the
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// doubles as a smoke-level reproduction run. The full-size regeneration is
// `go run ./cmd/paperbench -exp all`.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/workload"
)

// suiteIPC measures the mean IPC of a suite under cfg at the standard
// smoke budget (see the budget-semantics note in internal/config: the
// warm-up phase is functional-only, so the 30k measured instructions run
// entirely in cache-warm steady state).
func suiteIPC(b *testing.B, cfg config.Config, suite workload.Suite) float64 {
	b.Helper()
	cfg = cfg.SmokeBudget()
	var sum float64
	profs := workload.SuiteOf(suite)
	for _, p := range profs {
		r, err := Simulate(cfg, p.Name, 1)
		if err != nil {
			b.Fatal(err)
		}
		sum += r.IPC
	}
	return sum / float64(len(profs))
}

// BenchmarkFig1_Locality regenerates Figure 1's headline statistic: the
// fraction of load/store address calculations within 30 cycles of decode.
func BenchmarkFig1_Locality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default().SmokeBudget()
		var lf, sf float64
		profs := workload.SuiteOf(workload.SuiteFP)
		for _, p := range profs {
			r, err := Simulate(cfg, p.Name, 1)
			if err != nil {
				b.Fatal(err)
			}
			lf += r.LoadDist.FracWithin(30)
			sf += r.StoreDist.FracWithin(30)
		}
		b.ReportMetric(100*lf/float64(len(profs)), "FP_loads_pct_within30")
		b.ReportMetric(100*sf/float64(len(profs)), "FP_stores_pct_within30")
	}
}

// BenchmarkTuning_EpochSizing regenerates Section 5.2: the slowdown of the
// 64/32 per-epoch queues against unlimited ones.
func BenchmarkTuning_EpochSizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		limited := config.Default()
		unlimited := config.Default()
		unlimited.EpochMaxLoads = 1 << 20
		unlimited.EpochMaxStores = 1 << 20
		l := suiteIPC(b, limited, workload.SuiteFP)
		u := suiteIPC(b, unlimited, workload.SuiteFP)
		b.ReportMetric(100*(1-l/u), "FP_slowdown_pct")
	}
}

// fig7 speedups, one benchmark per suite.
func benchFig7(b *testing.B, suite workload.Suite, label string) {
	for i := 0; i < b.N; i++ {
		base := suiteIPC(b, config.OoO64(), suite)
		elsq := suiteIPC(b, config.Default(), suite)
		central := config.Default()
		central.LSQ = config.LSQCentral
		c := suiteIPC(b, central, suite)
		b.ReportMetric(elsq/base, label+"_elsq_sqm_speedup")
		b.ReportMetric(c/base, label+"_central_speedup")
	}
}

// BenchmarkFig7_INT regenerates the SPEC INT bars of Figure 7.
func BenchmarkFig7_INT(b *testing.B) { benchFig7(b, workload.SuiteInt, "INT") }

// BenchmarkFig7_FP regenerates the SPEC FP bars of Figure 7.
func BenchmarkFig7_FP(b *testing.B) { benchFig7(b, workload.SuiteFP, "FP") }

// BenchmarkFig8a_FilterAccuracy regenerates Figure 8(a): ERT false
// positives per 100M instructions at 8 and 12 hash bits.
func BenchmarkFig8a_FilterAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{8, 12} {
			cfg := config.Default().SmokeBudget()
			cfg.ERTHashBits = bits
			var fp float64
			profs := workload.SuiteOf(workload.SuiteInt)
			for _, p := range profs {
				r, err := Simulate(cfg, p.Name, 1)
				if err != nil {
					b.Fatal(err)
				}
				fp += stats.Per100M(r.Counters.Get("ert_false_positive"), r.Committed)
			}
			if bits == 8 {
				b.ReportMetric(fp/float64(len(profs)), "INT_falsepos_8bit")
			} else {
				b.ReportMetric(fp/float64(len(profs)), "INT_falsepos_12bit")
			}
		}
	}
}

// BenchmarkFig8bc_LineERTAssoc regenerates Figure 8(b,c)'s key contrast:
// line-based ERT at 1-way vs 4-way L1.
func BenchmarkFig8bc_LineERTAssoc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mk := func(ways int) config.Config {
			c := config.Default()
			c.ERT = config.ERTLine
			c.L1 = config.CacheConfig{SizeBytes: 32 << 10, Ways: ways, LineBytes: 32, LatencyCycles: 1}
			return c
		}
		one := suiteIPC(b, mk(1), workload.SuiteInt)
		four := suiteIPC(b, mk(4), workload.SuiteInt)
		b.ReportMetric(one/four, "INT_1way_rel_4way")
	}
}

// BenchmarkFig9_RestrictedDisambiguation regenerates Figure 9: RSAC and
// RLAC relative to full disambiguation (SPEC FP, where equake's outlier
// lives).
func BenchmarkFig9_RestrictedDisambiguation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := suiteIPC(b, config.Default(), workload.SuiteFP)
		rsac := config.Default()
		rsac.Disamb = config.DisambRSAC
		rlac := config.Default()
		rlac.Disamb = config.DisambRLAC
		b.ReportMetric(suiteIPC(b, rsac, workload.SuiteFP)/full, "FP_rsac_rel")
		b.ReportMetric(suiteIPC(b, rlac, workload.SuiteFP)/full, "FP_rlac_rel")
	}
}

// BenchmarkFig10_SVW regenerates Figure 10's window-dependence claim:
// re-executions per 100M instructions on OoO-64 vs FMC (10-bit SSBF,
// Blind).
func BenchmarkFig10_SVW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		measure := func(cfg config.Config) float64 {
			cfg = cfg.SmokeBudget()
			cfg.LSQ = config.LSQSVW
			cfg.SSBFBits = 10
			var re float64
			profs := workload.SuiteOf(workload.SuiteFP)
			for _, p := range profs {
				r, err := Simulate(cfg, p.Name, 1)
				if err != nil {
					b.Fatal(err)
				}
				re += stats.Per100M(r.Counters.Get("reexec"), r.Committed)
			}
			return re / float64(len(profs))
		}
		b.ReportMetric(measure(config.OoO64()), "FP_reexec_per100M_ooo64")
		b.ReportMetric(measure(config.Default()), "FP_reexec_per100M_fmc")
	}
}

// BenchmarkFig11_LLInactivity regenerates Figure 11: the LL-LSQ low-power
// residency at 1MB and 8MB L2.
func BenchmarkFig11_LLInactivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		measure := func(l2 int) float64 {
			cfg := config.Default().SmokeBudget()
			cfg.L2.SizeBytes = l2
			var idle float64
			profs := workload.SuiteOf(workload.SuiteInt)
			for _, p := range profs {
				r, err := Simulate(cfg, p.Name, 1)
				if err != nil {
					b.Fatal(err)
				}
				idle += r.LLIdleFrac
			}
			return 100 * idle / float64(len(profs))
		}
		b.ReportMetric(measure(1<<20), "INT_idle_pct_1MB")
		b.ReportMetric(measure(8<<20), "INT_idle_pct_8MB")
	}
}

// BenchmarkTable2_AccessCounts regenerates Table 2's FMC-Hash row for SPEC
// FP: HL-SQ and ERT accesses in millions per 100M instructions.
func BenchmarkTable2_AccessCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default().SmokeBudget()
		cfg.SQM = false
		var hlsq, ert float64
		profs := workload.SuiteOf(workload.SuiteFP)
		for _, p := range profs {
			r, err := Simulate(cfg, p.Name, 1)
			if err != nil {
				b.Fatal(err)
			}
			hlsq += stats.Per100M(r.Counters.Get("hl_sq"), r.Committed) / 1e6
			ert += stats.Per100M(r.Counters.Get("ert"), r.Committed) / 1e6
		}
		b.ReportMetric(hlsq/float64(len(profs)), "FP_hlsq_M_per100M")
		b.ReportMetric(ert/float64(len(profs)), "FP_ert_M_per100M")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed — the
// engineering metric of the simulator itself. The instruction count
// includes the warm-up: functional warm-up is simulator work and wall time
// covers it, so insts/sec would otherwise be understated (the full matrix
// version of this measurement lives in internal/bench / cmd/elsqbench).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := config.Default().WithBudget(50_000, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Simulate(cfg, "gcc", 1)
		if err != nil {
			b.Fatal(err)
		}
		if r.Committed == 0 {
			b.Fatal("no progress")
		}
	}
	b.ReportMetric(float64(cfg.MaxInsts+cfg.WarmupInsts)*float64(b.N), "insts")
}

// --- Ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblation_SQM isolates the Store Queue Mirror's contribution on
// the forwarding-sensitive integer suite.
func BenchmarkAblation_SQM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := suiteIPC(b, config.Default(), workload.SuiteInt)
		noSQM := config.Default()
		noSQM.SQM = false
		without := suiteIPC(b, noSQM, workload.SuiteInt)
		b.ReportMetric(100*(with/without-1), "INT_sqm_gain_pct")
	}
}

// BenchmarkAblation_Epochs sweeps the number of memory engines: the window-
// size lever of the FMC design (paper Section 5.2 picks 16).
func BenchmarkAblation_Epochs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{4, 16} {
			cfg := config.Default()
			cfg.NumEpochs = n
			ipc := suiteIPC(b, cfg, workload.SuiteFP)
			if n == 4 {
				b.ReportMetric(ipc, "FP_ipc_4_engines")
			} else {
				b.ReportMetric(ipc, "FP_ipc_16_engines")
			}
		}
	}
}

// BenchmarkAblation_BusLatency sweeps the CP<->MP one-way latency without
// the SQM — the cost the mirror exists to hide.
func BenchmarkAblation_BusLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, lat := range []int{4, 16} {
			cfg := config.Default()
			cfg.SQM = false
			cfg.BusOneWay = lat
			ipc := suiteIPC(b, cfg, workload.SuiteInt)
			if lat == 4 {
				b.ReportMetric(ipc, "INT_ipc_bus4")
			} else {
				b.ReportMetric(ipc, "INT_ipc_bus16")
			}
		}
	}
}

// BenchmarkAblation_MigrateThreshold sweeps the Virtual-ROB extraction
// point: too eager migrates L2 hits to the in-order engines, too lazy
// stalls the Cache Processor.
func BenchmarkAblation_MigrateThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, thr := range []int{12, 48, 192} {
			cfg := config.Default()
			cfg.MigrateThreshold = thr
			ipc := suiteIPC(b, cfg, workload.SuiteFP)
			switch thr {
			case 12:
				b.ReportMetric(ipc, "FP_ipc_thr12")
			case 48:
				b.ReportMetric(ipc, "FP_ipc_thr48")
			default:
				b.ReportMetric(ipc, "FP_ipc_thr192")
			}
		}
	}
}
