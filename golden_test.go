package repro

// The golden-output test pins the simulator's observable behaviour: every
// field of cpu.Result (counters, histograms, activity statistics) and the
// sweep cache identity of a spread of (scheme, benchmark, seed) points must
// stay bit-identical across refactors of the hot path. The fixture was
// generated before the allocation-free overhaul of the per-instruction loop
// and proves the overhaul changed performance, not results.
//
// Regenerate (only when a change is *meant* to alter results, alongside a
// sweep cacheVersion bump):
//
//	go test -run TestGoldenOutputs -update-golden

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/simrun"
	"repro/internal/sweep"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current simulator")

// goldenResult is the serialised form of one simulation outcome. Floats
// survive a JSON round trip bit-exactly (encoding/json emits the shortest
// representation that round-trips), so equality below is exact.
type goldenResult struct {
	Bench     string            `json:"bench"`
	Seed      uint64            `json:"seed"`
	Config    string            `json:"config"`
	SweepKey  string            `json:"sweep_key"`
	Committed uint64            `json:"committed"`
	Cycles    int64             `json:"cycles"`
	IPC       float64           `json:"ipc"`
	Counters  map[string]uint64 `json:"counters"`
	LoadDist  goldenHist        `json:"load_dist"`
	StoreDist goldenHist        `json:"store_dist"`
	LLIdle    float64           `json:"ll_idle_frac"`
	AvgEpochs float64           `json:"avg_epochs"`
}

type goldenHist struct {
	Counts   []uint64 `json:"counts"`
	Total    uint64   `json:"total"`
	Overflow uint64   `json:"overflow"`
}

// goldenPoints spans every scheme/model/disambiguation path the pipeline
// model can take, at the smoke budget.
func goldenPoints() []sweep.Job {
	mk := func(bench string, seed uint64, mut func(*config.Config)) sweep.Job {
		cfg := config.Default()
		cfg.MaxInsts = 20_000
		cfg.WarmupInsts = 100_000
		if mut != nil {
			mut(&cfg)
		}
		prof, err := workload.ByName(bench)
		if err != nil {
			panic(err)
		}
		return sweep.Job{Config: cfg, Bench: prof, Seed: seed}
	}
	return []sweep.Job{
		mk("swim", 1, nil),   // FMC-Hash+SQM, FP streaming
		mk("swim", 2, nil),   // seed sensitivity
		mk("gcc", 1, nil),    // FMC-Hash+SQM, INT control-heavy
		mk("mcf", 1, nil),    // pointer chasing, deep misses
		mk("equake", 1, nil), // FP with store-address chasing (RSAC outlier)
		mk("gcc", 1, func(c *config.Config) { c.SQM = false }),
		mk("gcc", 1, func(c *config.Config) { c.ERT = config.ERTLine }),
		mk("swim", 1, func(c *config.Config) { c.Disamb = config.DisambRSAC }),
		mk("swim", 1, func(c *config.Config) { c.Disamb = config.DisambRLAC }),
		mk("swim", 1, func(c *config.Config) { c.Disamb = config.DisambRSACLAC }),
		mk("gcc", 1, func(c *config.Config) { c.LSQ = config.LSQCentral }),
		mk("swim", 1, func(c *config.Config) { c.LSQ = config.LSQSVW }), // FMC + SVW
		mk("gcc", 1, func(c *config.Config) {
			c.Model = config.ModelOoO
			c.LSQ = config.LSQConventional
		}),
		mk("swim", 1, func(c *config.Config) {
			c.Model = config.ModelOoO
			c.LSQ = config.LSQSVW
		}),
	}
}

func runGoldenPoint(t *testing.T, j sweep.Job) goldenResult {
	t.Helper()
	// Every golden point runs under the differential oracle: the pinned
	// results must also be memory-ordering correct, or the fixture would
	// lock a latent bug in.
	out, err := simrun.Point{Config: j.Config, Bench: j.Bench.Name, Seed: j.Seed, Oracle: true}.Run(nil)
	if err != nil {
		t.Fatalf("%s/%s seed %d: %v", j.Config.Name(), j.Bench.Name, j.Seed, err)
	}
	if err := out.Oracle.Err(); err != nil {
		t.Errorf("%s/%s seed %d: %v", j.Config.Name(), j.Bench.Name, j.Seed, err)
	}
	res := out.Result
	return goldenResult{
		Bench:     j.Bench.Name,
		Seed:      j.Seed,
		Config:    res.Config,
		SweepKey:  j.Key(),
		Committed: res.Committed,
		Cycles:    res.Cycles,
		IPC:       res.IPC,
		Counters:  res.Counters.Snapshot(),
		LoadDist:  goldenHist{Counts: res.LoadDist.Counts, Total: res.LoadDist.Total, Overflow: res.LoadDist.Overflow},
		StoreDist: goldenHist{Counts: res.StoreDist.Counts, Total: res.StoreDist.Total, Overflow: res.StoreDist.Overflow},
		LLIdle:    res.LLIdleFrac,
		AvgEpochs: res.AvgEpochs,
	}
}

func TestGoldenOutputs(t *testing.T) {
	path := filepath.Join("testdata", "golden.json")
	var got []goldenResult
	for _, j := range goldenPoints() {
		got = append(got, runGoldenPoint(t, j))
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden results to %s", len(got), path)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update-golden): %v", err)
	}
	var want []goldenResult
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden fixture has %d results, current points produce %d", len(want), len(got))
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("point %d (%s/%s seed %d) diverged from golden fixture:\n got: %+v\nwant: %+v",
				i, got[i].Config, got[i].Bench, got[i].Seed, got[i], want[i])
		}
	}
}
